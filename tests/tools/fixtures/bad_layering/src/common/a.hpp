// Fixture: half of an include cycle inside the common layer (legal by
// the partial order, still a cycle the DFS must catch).
#pragma once
#include "common/b.hpp"
