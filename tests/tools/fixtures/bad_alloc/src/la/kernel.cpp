// Fixture: an SA_STEADY_STATE region that reaches a heap allocation only
// through two levels of same-repo calls.  sa_lint must walk the chain
// and report the push_back, not the annotated function.
#include <vector>

namespace fx {

std::vector<double>& scratch() {
  static std::vector<double> s;
  return s;
}

void stage_two(double v) {
  scratch().push_back(v);  // the hidden allocation (line 14)
}

void stage_one(double v) { stage_two(v * 2.0); }

void hot_kernel(double v) {
  SA_STEADY_STATE;
  stage_one(v);
}

}  // namespace fx
