// Fixture: a stray collective issued from an engine TU.  Only the
// EngineBase TU (src/core/solver.cpp) and src/dist/ may talk to the
// communicator, so sa_lint must flag this call site.
#include <vector>

namespace fx {

struct Comm {
  void allreduce_sum(std::vector<double>& v);
};

void engine_step(Comm& comm, std::vector<double>& partials) {
  comm.allreduce_sum(partials);  // collective outside the plane (line 13)
}

}  // namespace fx
