// Fixture: a common-layer header with no dependencies, as the layering
// rule requires.
#pragma once

namespace fx {
inline double bias() { return 0.5; }
}  // namespace fx
