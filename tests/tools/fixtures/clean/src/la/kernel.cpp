// Fixture: the negative control — an annotated steady-state kernel whose
// call chain stays on pre-sized storage, one justified waiver on a
// grow-only warmup path, and layer-respecting includes.
#include "common/util.hpp"

#include <vector>

namespace fx {

double accumulate(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return total;
}

double hot_kernel(const std::vector<double>& xs) {
  SA_STEADY_STATE;
  return accumulate(xs) + fx::bias();
}

void warm(std::vector<double>& pool, std::size_t n) {
  SA_STEADY_STATE;
  // sa-lint: allow(alloc): grow-only warmup, steady state never resizes
  if (pool.size() < n) pool.resize(n);
}

}  // namespace fx
