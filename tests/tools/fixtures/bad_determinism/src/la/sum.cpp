// Fixture: two determinism hazards in a kernel TU — iterating an
// unordered container (unspecified order feeding a float sum) and a
// non-SplitMix64 RNG engine.
#include <random>
#include <unordered_map>

namespace fx {

double hashed_sum(const std::unordered_map<int, double>& weights) {
  std::unordered_map<int, double> local = weights;
  double total = 0.0;
  for (const auto& kv : local) total += kv.second;  // order hazard (line 12)
  return total;
}

double noisy(double x) {
  std::mt19937 gen(42);  // non-SplitMix64 engine (line 17)
  return x + static_cast<double>(gen());
}

}  // namespace fx
