// sa_lint conformance: each rule family is proven LIVE against a known-bad
// fixture mini-repo (tests/tools/fixtures/<case>/src/...) with exact
// file:line assertions, the waiver grammar is exercised both ways
// (justified waivers silence, bare waivers surface), and the clean
// negative pins the false-positive rate at zero.  The final test is the
// same whole-repo gate CI runs: src/ must be diagnostic-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lint.hpp"

namespace {

using sa_lint::Diagnostic;
using sa_lint::LintResult;

LintResult lint_fixture(const std::string& name) {
  return sa_lint::run_lint(std::string(SA_LINT_FIXTURE_DIR) + "/" + name);
}

/// True when some diagnostic matches (file, line, rule) exactly.
bool has(const LintResult& r, const std::string& file, int line,
         const std::string& rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.file == file && d.line == line &&
                              d.rule == rule;
                     });
}

std::string dump(const LintResult& r) {
  std::string out;
  for (const Diagnostic& d : r.diagnostics) out += sa_lint::format(d) + "\n";
  return out;
}

TEST(SaLint, AllocHiddenBehindTwoCalls) {
  const LintResult r = lint_fixture("bad_alloc");
  // The push_back is two same-repo calls below the annotated region; the
  // diagnostic lands on the allocating line, not on the annotation.
  EXPECT_TRUE(has(r, "src/la/kernel.cpp", 14, "alloc")) << dump(r);
  ASSERT_EQ(r.diagnostics.size(), 1u) << dump(r);
  // The chain names both the steady-state root and the hop that hides
  // the allocation, so the report is actionable.
  EXPECT_NE(r.diagnostics[0].message.find("hot_kernel"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("stage_two"), std::string::npos);
}

TEST(SaLint, CollectiveOutsideRoundPlane) {
  const LintResult r = lint_fixture("bad_collective");
  EXPECT_TRUE(has(r, "src/core/engine_x.cpp", 13, "collective")) << dump(r);
  EXPECT_EQ(r.diagnostics.size(), 1u) << dump(r);
}

TEST(SaLint, DeterminismHazardsInKernelTu) {
  const LintResult r = lint_fixture("bad_determinism");
  // Iterating an unordered container feeds a float sum in unspecified
  // order; mt19937 is not the project's SplitMix64.
  EXPECT_TRUE(has(r, "src/la/sum.cpp", 12, "determinism")) << dump(r);
  EXPECT_TRUE(has(r, "src/la/sum.cpp", 17, "determinism")) << dump(r);
}

TEST(SaLint, WalkerSeesThroughIntrinsicHeavyCode) {
  const LintResult r = lint_fixture("bad_simd");
  // The hazards sit BELOW an AVX2 gather loop: __m256d locals, _mm256_*
  // calls, reinterpret_casts.  Finding them proves the tokenizer and
  // function extractor survive intrinsic-heavy kernels (src/la/simd/)
  // instead of silently skipping the body — and that plain intrinsics
  // do not themselves trip [determinism].
  EXPECT_TRUE(has(r, "src/la/gather.cpp", 29, "determinism")) << dump(r);
  EXPECT_TRUE(has(r, "src/la/gather.cpp", 31, "determinism")) << dump(r);
  EXPECT_EQ(r.diagnostics.size(), 2u) << dump(r);
}

TEST(SaLint, LayeringInversionAndCycle) {
  const LintResult r = lint_fixture("bad_layering");
  // la reaching up into dist inverts the layer order.
  EXPECT_TRUE(has(r, "src/la/uses_dist.cpp", 2, "layering")) << dump(r);
  // a.hpp <-> b.hpp is a cycle even though both sit in the same layer.
  EXPECT_TRUE(has(r, "src/common/b.hpp", 3, "layering")) << dump(r);
  EXPECT_EQ(r.diagnostics.size(), 2u) << dump(r);
}

TEST(SaLint, BareWaiverSurfacesAsSuppressionDiagnostic) {
  const LintResult r = lint_fixture("bad_suppression");
  // The waiver silences the alloc finding it covers...
  EXPECT_FALSE(has(r, "src/la/waived.cpp", 10, "alloc")) << dump(r);
  // ...but is itself reported: every exception must say why it is sound.
  EXPECT_TRUE(has(r, "src/la/waived.cpp", 9, "suppression")) << dump(r);
  EXPECT_EQ(r.diagnostics.size(), 1u) << dump(r);
}

TEST(SaLint, CleanFixtureHasNoDiagnostics) {
  const LintResult r = lint_fixture("clean");
  EXPECT_EQ(r.diagnostics.size(), 0u) << dump(r);
  EXPECT_EQ(r.files_scanned, 2u);
}

TEST(SaLint, RepoSrcIsDiagnosticFree) {
  // The same gate CI runs: the real src/ tree, with its annotations and
  // justified waivers, must lint clean.
  const LintResult r = sa_lint::run_lint(SA_LINT_REPO_ROOT);
  EXPECT_EQ(r.diagnostics.size(), 0u) << dump(r);
  EXPECT_GT(r.files_scanned, 50u);
}

}  // namespace
