// Tests for the synthetic dataset generators and paper twins.
#include "data/synthetic.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "la/vector_ops.hpp"

namespace sa::data {
namespace {

TEST(MakeRegression, ShapesMatchConfig) {
  RegressionConfig cfg;
  cfg.num_points = 50;
  cfg.num_features = 30;
  cfg.density = 0.2;
  cfg.support_size = 5;
  const RegressionProblem p = make_regression(cfg);
  EXPECT_EQ(p.dataset.num_points(), 50u);
  EXPECT_EQ(p.dataset.num_features(), 30u);
  EXPECT_EQ(p.x_star.size(), 30u);
}

TEST(MakeRegression, PlantedSupportSizeHonoured) {
  RegressionConfig cfg;
  cfg.support_size = 7;
  cfg.num_features = 40;
  const RegressionProblem p = make_regression(cfg);
  std::size_t nonzeros = 0;
  for (double v : p.x_star)
    if (v != 0.0) ++nonzeros;
  EXPECT_EQ(nonzeros, 7u);
}

TEST(MakeRegression, NoiselessTargetsEqualPlantedModel) {
  RegressionConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.num_points = 20;
  cfg.num_features = 15;
  cfg.density = 0.5;
  const RegressionProblem p = make_regression(cfg);
  std::vector<double> ax(p.dataset.num_points());
  p.dataset.a.spmv(p.x_star, ax);
  for (std::size_t i = 0; i < ax.size(); ++i)
    EXPECT_NEAR(ax[i], p.dataset.b[i], 1e-12);
}

TEST(MakeRegression, DensityApproximatelyHonoured) {
  RegressionConfig cfg;
  cfg.num_points = 400;
  cfg.num_features = 100;
  cfg.density = 0.1;
  const RegressionProblem p = make_regression(cfg);
  EXPECT_NEAR(p.dataset.density(), 0.1, 0.02);
}

TEST(MakeRegression, EveryRowHasAtLeastOneNonzero) {
  RegressionConfig cfg;
  cfg.num_points = 200;
  cfg.num_features = 500;
  cfg.density = 0.001;  // far below one expected nonzero per row
  const RegressionProblem p = make_regression(cfg);
  for (std::size_t i = 0; i < p.dataset.num_points(); ++i)
    EXPECT_GE(p.dataset.a.row_nnz(i), 1u);
}

TEST(MakeRegression, DeterministicGivenSeed) {
  RegressionConfig cfg;
  cfg.seed = 1234;
  const RegressionProblem p1 = make_regression(cfg);
  const RegressionProblem p2 = make_regression(cfg);
  EXPECT_EQ(p1.dataset.b, p2.dataset.b);
  EXPECT_EQ(p1.x_star, p2.x_star);
  EXPECT_EQ(p1.dataset.nnz(), p2.dataset.nnz());
}

TEST(MakeRegression, DifferentSeedsProduceDifferentData) {
  RegressionConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(make_regression(a).dataset.b, make_regression(b).dataset.b);
}

TEST(MakeRegression, RejectsOversizedSupport) {
  RegressionConfig cfg;
  cfg.num_features = 5;
  cfg.support_size = 6;
  EXPECT_THROW(make_regression(cfg), sa::PreconditionError);
}

TEST(MakeClassification, LabelsAreBinary) {
  ClassificationConfig cfg;
  cfg.num_points = 100;
  cfg.num_features = 20;
  const Dataset d = make_classification(cfg);
  EXPECT_TRUE(d.has_binary_labels());
}

TEST(MakeClassification, BothClassesPresent) {
  ClassificationConfig cfg;
  cfg.num_points = 200;
  cfg.num_features = 10;
  cfg.density = 0.5;
  const Dataset d = make_classification(cfg);
  std::set<double> labels(d.b.begin(), d.b.end());
  EXPECT_EQ(labels.size(), 2u);
}

TEST(MakeClassification, MarginEnforcedByRowScaling) {
  ClassificationConfig cfg;
  cfg.num_points = 150;
  cfg.num_features = 12;
  cfg.density = 0.6;
  cfg.margin = 0.8;
  cfg.seed = 5;
  const Dataset d = make_classification(cfg);
  // Recover the planted hyperplane deterministically: same RNG consumption
  // order as the generator is internal, so instead verify separability via
  // functional margins of the generating construction: every |A_i·w| ≥
  // margin is not directly checkable without w, but labels must be
  // realizable — check a weaker invariant: no zero rows.
  for (std::size_t i = 0; i < d.num_points(); ++i)
    EXPECT_GE(d.a.row_nnz(i), 1u);
}

TEST(MakeClassification, LabelNoiseFlipsSomeLabels) {
  ClassificationConfig clean, noisy;
  clean.num_points = noisy.num_points = 300;
  clean.num_features = noisy.num_features = 20;
  clean.seed = noisy.seed = 9;
  noisy.label_noise = 0.3;
  const Dataset a = make_classification(clean);
  const Dataset b = make_classification(noisy);
  std::size_t flips = 0;
  for (std::size_t i = 0; i < a.num_points(); ++i)
    if (a.b[i] != b.b[i]) ++flips;
  EXPECT_GT(flips, 30u);
  EXPECT_LT(flips, 150u);
}

TEST(PaperShapes, MatchPrintedTables) {
  const PaperShape url = paper_shape(PaperDataset::kUrl);
  EXPECT_EQ(url.features, 3231961u);
  EXPECT_EQ(url.points, 2396130u);
  EXPECT_FALSE(url.classification);

  const PaperShape covtype = paper_shape(PaperDataset::kCovtype);
  EXPECT_EQ(covtype.features, 54u);
  EXPECT_EQ(covtype.points, 581012u);
  EXPECT_NEAR(covtype.nnz_percent, 22.0, 1e-12);

  const PaperShape gisette = paper_shape(PaperDataset::kGisette);
  EXPECT_TRUE(gisette.classification);
  EXPECT_EQ(gisette.features, 6000u);
}

TEST(PaperTwin, ShrinkScalesDimensions) {
  const Dataset d = make_paper_twin(PaperDataset::kNews20, 100.0);
  const PaperShape s = paper_shape(PaperDataset::kNews20);
  EXPECT_NEAR(static_cast<double>(d.num_features()),
              static_cast<double>(s.features) / 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(d.num_points()),
              static_cast<double>(s.points) / 100.0, 2.0);
}

TEST(PaperTwin, MinimumDimensionFloor) {
  const Dataset d = make_paper_twin(PaperDataset::kLeu, 1e9);
  EXPECT_GE(d.num_features(), 16u);
  EXPECT_GE(d.num_points(), 16u);
}

TEST(PaperTwin, ClassificationTwinsHaveBinaryLabels) {
  for (PaperDataset which : svm_paper_datasets()) {
    const Dataset d = make_paper_twin(which, 200.0, 42,
                                      /*force_classification=*/true);
    EXPECT_TRUE(d.has_binary_labels()) << d.name;
  }
}

TEST(PaperTwin, RegressionTwinsHaveContinuousTargets) {
  const Dataset d = make_paper_twin(PaperDataset::kCovtype, 500.0);
  EXPECT_FALSE(d.has_binary_labels());
}

TEST(PaperTwin, DensityTracksTable) {
  const Dataset dense_twin = make_paper_twin(PaperDataset::kEpsilon, 100.0);
  EXPECT_GT(dense_twin.density(), 0.95);
  const Dataset sparse_twin = make_paper_twin(PaperDataset::kNews20, 50.0);
  EXPECT_LT(sparse_twin.density(), 0.05);
}

TEST(PaperTwin, RejectsShrinkBelowOne) {
  EXPECT_THROW(make_paper_twin(PaperDataset::kLeu, 0.5),
               sa::PreconditionError);
}

TEST(PaperTwin, DatasetListsCoverTables) {
  EXPECT_EQ(lasso_paper_datasets().size(), 5u);   // Table II
  EXPECT_EQ(svm_paper_datasets().size(), 6u);     // Table IV
}

TEST(DatasetSummary, ReportsNnzPercent) {
  RegressionConfig cfg;
  cfg.num_points = 100;
  cfg.num_features = 50;
  cfg.density = 0.2;
  const Dataset d = make_regression(cfg).dataset;
  const DatasetSummary s = summarize(d);
  EXPECT_EQ(s.points, 100u);
  EXPECT_EQ(s.features, 50u);
  EXPECT_NEAR(s.nnz_percent, 20.0, 5.0);
}

}  // namespace
}  // namespace sa::data
