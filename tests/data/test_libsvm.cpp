// Tests for the LIBSVM reader/writer.
#include "data/libsvm_io.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sa::data {
namespace {

TEST(LibsvmRead, ParsesBasicFile) {
  std::istringstream in("+1 1:0.5 3:2\n-1 2:1.5\n");
  const Dataset d = read_libsvm(in);
  EXPECT_EQ(d.num_points(), 2u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.nnz(), 3u);
  EXPECT_DOUBLE_EQ(d.b[0], 1.0);
  EXPECT_DOUBLE_EQ(d.b[1], -1.0);
  EXPECT_DOUBLE_EQ(d.a.to_dense()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(d.a.to_dense()(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d.a.to_dense()(1, 1), 1.5);
}

TEST(LibsvmRead, HandlesEmptyLinesAndComments) {
  std::istringstream in("\n# full comment line\n+1 1:1 # trailing comment\n\n");
  const Dataset d = read_libsvm(in);
  EXPECT_EQ(d.num_points(), 1u);
  EXPECT_EQ(d.nnz(), 1u);
}

TEST(LibsvmRead, PointWithNoFeaturesIsAllowed) {
  std::istringstream in("3.5\n-1 1:2\n");
  const Dataset d = read_libsvm(in);
  EXPECT_EQ(d.num_points(), 2u);
  EXPECT_EQ(d.a.row_nnz(0), 0u);
  EXPECT_DOUBLE_EQ(d.b[0], 3.5);
}

TEST(LibsvmRead, RegressionTargetsSupported) {
  std::istringstream in("2.75 1:1\n-0.5 1:2\n");
  const Dataset d = read_libsvm(in);
  EXPECT_FALSE(d.has_binary_labels());
  EXPECT_DOUBLE_EQ(d.b[0], 2.75);
}

TEST(LibsvmRead, RespectsDeclaredFeatureCount) {
  std::istringstream in("+1 2:1\n");
  LibsvmReadOptions opts;
  opts.num_features = 10;
  const Dataset d = read_libsvm(in, opts);
  EXPECT_EQ(d.num_features(), 10u);
}

TEST(LibsvmRead, RejectsIndexBeyondDeclaredCount) {
  std::istringstream in("+1 11:1\n");
  LibsvmReadOptions opts;
  opts.num_features = 10;
  EXPECT_THROW(read_libsvm(in, opts), sa::PreconditionError);
}

TEST(LibsvmRead, ZeroBasedMode) {
  std::istringstream in("+1 0:5\n");
  LibsvmReadOptions opts;
  opts.zero_based = true;
  const Dataset d = read_libsvm(in, opts);
  EXPECT_DOUBLE_EQ(d.a.to_dense()(0, 0), 5.0);
}

TEST(LibsvmRead, RejectsZeroIndexInOneBasedMode) {
  std::istringstream in("+1 0:5\n");
  EXPECT_THROW(read_libsvm(in), sa::PreconditionError);
}

TEST(LibsvmRead, RejectsNonIncreasingIndices) {
  std::istringstream in("+1 2:1 2:2\n");
  EXPECT_THROW(read_libsvm(in), sa::PreconditionError);
  std::istringstream in2("+1 3:1 2:2\n");
  EXPECT_THROW(read_libsvm(in2), sa::PreconditionError);
}

TEST(LibsvmRead, RejectsMalformedTokens) {
  std::istringstream bad_pair("+1 1\n");
  EXPECT_THROW(read_libsvm(bad_pair), sa::PreconditionError);
  std::istringstream bad_value("+1 1:abc\n");
  EXPECT_THROW(read_libsvm(bad_value), sa::PreconditionError);
  std::istringstream bad_index("+1 x:1\n");
  EXPECT_THROW(read_libsvm(bad_index), sa::PreconditionError);
}

TEST(LibsvmRead, MissingFileThrows) {
  EXPECT_THROW(read_libsvm_file("/nonexistent/path.libsvm"),
               sa::PreconditionError);
}

TEST(LibsvmRead, EmptyStreamYieldsEmptyDataset) {
  std::istringstream in("");
  const Dataset d = read_libsvm(in);
  EXPECT_EQ(d.num_points(), 0u);
  EXPECT_EQ(d.num_features(), 0u);
}

TEST(LibsvmWrite, RoundTripsThroughText) {
  std::istringstream in("+1 1:0.5 3:2\n-1 2:1.5\n2.5\n");
  LibsvmReadOptions opts;
  opts.num_features = 4;
  const Dataset original = read_libsvm(in, opts);

  std::ostringstream out;
  write_libsvm(out, original);
  std::istringstream back(out.str());
  LibsvmReadOptions opts2;
  opts2.num_features = 4;
  const Dataset round = read_libsvm(back, opts2);

  EXPECT_EQ(round.num_points(), original.num_points());
  EXPECT_EQ(round.nnz(), original.nnz());
  EXPECT_EQ(round.b, original.b);
  EXPECT_LT(round.a.to_dense().max_abs_diff(original.a.to_dense()), 1e-12);
}

TEST(LibsvmWrite, UsesOneBasedIndices) {
  Dataset d;
  d.name = "tiny";
  d.a = la::CsrMatrix::from_triplets(1, 2, {{0, 0, 1.0}});
  d.b = {1.0};
  std::ostringstream out;
  write_libsvm(out, d);
  EXPECT_EQ(out.str(), "1 1:1\n");
}

TEST(LibsvmFileIo, WriteThenReadFromDisk) {
  Dataset d;
  d.name = "disk";
  d.a = la::CsrMatrix::from_triplets(2, 3,
                                     {{0, 0, 1.5}, {1, 2, -2.0}});
  d.b = {1.0, -1.0};
  const std::string path = ::testing::TempDir() + "/sa_opt_test.libsvm";
  write_libsvm_file(path, d);
  LibsvmReadOptions opts;
  opts.num_features = 3;
  const Dataset back = read_libsvm_file(path, opts);
  EXPECT_EQ(back.num_points(), 2u);
  EXPECT_LT(back.a.to_dense().max_abs_diff(d.a.to_dense()), 1e-12);
  EXPECT_EQ(back.name, path);
}

}  // namespace
}  // namespace sa::data
