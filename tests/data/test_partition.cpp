// Tests for 1D block partitioning and load-balance diagnostics.
#include "data/partition.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sa::data {
namespace {

TEST(Partition, BlockSplitsEvenly) {
  const Partition p = Partition::block(12, 4);
  EXPECT_EQ(p.num_ranks(), 4);
  EXPECT_EQ(p.total(), 12u);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.count(r), 3u);
}

TEST(Partition, BlockDistributesRemainderToLeadingRanks) {
  const Partition p = Partition::block(10, 4);
  EXPECT_EQ(p.count(0), 3u);
  EXPECT_EQ(p.count(1), 3u);
  EXPECT_EQ(p.count(2), 2u);
  EXPECT_EQ(p.count(3), 2u);
  EXPECT_EQ(p.end(3), 10u);
}

TEST(Partition, BlocksAreContiguousAndCovering) {
  const Partition p = Partition::block(17, 5);
  EXPECT_EQ(p.begin(0), 0u);
  for (int r = 1; r < 5; ++r) EXPECT_EQ(p.begin(r), p.end(r - 1));
  EXPECT_EQ(p.end(4), 17u);
}

TEST(Partition, MoreRanksThanItemsGivesEmptyBlocks) {
  const Partition p = Partition::block(2, 5);
  EXPECT_EQ(p.count(0), 1u);
  EXPECT_EQ(p.count(1), 1u);
  for (int r = 2; r < 5; ++r) EXPECT_EQ(p.count(r), 0u);
}

TEST(Partition, OwnerFindsCorrectRank) {
  const Partition p = Partition::block(10, 3);  // 4, 3, 3
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(3), 0);
  EXPECT_EQ(p.owner(4), 1);
  EXPECT_EQ(p.owner(6), 1);
  EXPECT_EQ(p.owner(7), 2);
  EXPECT_EQ(p.owner(9), 2);
}

TEST(Partition, OwnerRejectsOutOfRange) {
  const Partition p = Partition::block(5, 2);
  EXPECT_THROW(p.owner(5), sa::PreconditionError);
}

TEST(Partition, ExplicitOffsetsValidated) {
  EXPECT_NO_THROW(Partition({0, 2, 2, 5}));
  EXPECT_THROW(Partition({1, 2}), sa::PreconditionError);   // must start at 0
  EXPECT_THROW(Partition({0, 3, 2}), sa::PreconditionError);  // decreasing
  EXPECT_THROW(Partition({0}), sa::PreconditionError);        // no blocks
}

TEST(Partition, OwnerSkipsEmptyBlocks) {
  const Partition p({0, 2, 2, 5});
  EXPECT_EQ(p.owner(1), 0);
  EXPECT_EQ(p.owner(2), 2);  // block 1 is empty; index 2 belongs to block 2
}

TEST(Partition, BlockRejectsZeroRanks) {
  EXPECT_THROW(Partition::block(5, 0), sa::PreconditionError);
}

TEST(LoadBalance, UniformMatrixIsBalanced) {
  // 4 rows with 2 nonzeros each over 2 ranks: perfect balance.
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < 4; ++i) {
    t.push_back({i, 0, 1.0});
    t.push_back({i, 3, 1.0});
  }
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(4, 4, t);
  const LoadBalance lb = row_partition_balance(a, Partition::block(4, 2));
  EXPECT_EQ(lb.min_nnz, 4u);
  EXPECT_EQ(lb.max_nnz, 4u);
  EXPECT_DOUBLE_EQ(lb.imbalance, 1.0);
}

TEST(LoadBalance, SkewedRowsShowImbalance) {
  // Rank 0 gets a heavy row, rank 1 a light one.
  std::vector<la::Triplet> t;
  for (std::size_t j = 0; j < 9; ++j) t.push_back({0, j, 1.0});
  t.push_back({1, 0, 1.0});
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(2, 9, t);
  const LoadBalance lb = row_partition_balance(a, Partition::block(2, 2));
  EXPECT_EQ(lb.max_nnz, 9u);
  EXPECT_EQ(lb.min_nnz, 1u);
  EXPECT_NEAR(lb.imbalance, 9.0 / 5.0, 1e-12);
}

TEST(LoadBalance, ColumnPartitionCountsByColumn) {
  // All nonzeros in column 0: rank 0 owns everything.
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < 5; ++i) t.push_back({i, 0, 1.0});
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(5, 4, t);
  const LoadBalance lb = col_partition_balance(a, Partition::block(4, 2));
  EXPECT_EQ(lb.max_nnz, 5u);
  EXPECT_EQ(lb.min_nnz, 0u);
  EXPECT_NEAR(lb.imbalance, 2.0, 1e-12);
}

TEST(LoadBalance, PartitionSizeMismatchRejected) {
  const la::CsrMatrix a = la::CsrMatrix::from_triplets(3, 3, {{0, 0, 1.0}});
  EXPECT_THROW(row_partition_balance(a, Partition::block(4, 2)),
               sa::PreconditionError);
  EXPECT_THROW(col_partition_balance(a, Partition::block(4, 2)),
               sa::PreconditionError);
}

}  // namespace
}  // namespace sa::data
