// Tests for the deterministic RNG and the without-replacement sampler.
#include "data/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sa::data {
namespace {

TEST(SplitMix64, SameSeedSameSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64, DoublesHaveReasonableMean) {
  SplitMix64 rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SplitMix64, NextBelowRespectsBound) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(SplitMix64, NextBelowCoversAllResidues) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(SplitMix64, NextBelowOneIsAlwaysZero) {
  SplitMix64 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(SplitMix64, NextBelowRejectsZeroBound) {
  SplitMix64 rng(3);
  EXPECT_THROW(rng.next_below(0), sa::PreconditionError);
}

TEST(SplitMix64, NormalsHaveUnitVarianceRoughly) {
  SplitMix64 rng(21);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(CoordinateSampler, BlocksAreDistinctAndInRange) {
  CoordinateSampler sampler(20, 6, 42);
  for (int round = 0; round < 50; ++round) {
    const std::vector<std::size_t> block = sampler.next();
    ASSERT_EQ(block.size(), 6u);
    std::set<std::size_t> unique(block.begin(), block.end());
    EXPECT_EQ(unique.size(), 6u);
    for (std::size_t i : block) EXPECT_LT(i, 20u);
  }
}

TEST(CoordinateSampler, SameSeedReplicatesAcrossInstances) {
  // The paper's communication-free sampling: every rank builds the same
  // sampler and must draw identical index sequences.
  CoordinateSampler a(100, 8, 7);
  CoordinateSampler b(100, 8, 7);
  for (int round = 0; round < 30; ++round) EXPECT_EQ(a.next(), b.next());
}

TEST(CoordinateSampler, FullBlockIsPermutation) {
  CoordinateSampler sampler(10, 10, 1);
  const std::vector<std::size_t> block = sampler.next();
  std::set<std::size_t> unique(block.begin(), block.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(CoordinateSampler, SingleCoordinateCoversRangeOverTime) {
  CoordinateSampler sampler(8, 1, 3);
  std::set<std::size_t> seen;
  for (int round = 0; round < 200; ++round) seen.insert(sampler.next()[0]);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(CoordinateSampler, MarginalFrequenciesRoughlyUniform) {
  const std::size_t n = 10, mu = 2;
  CoordinateSampler sampler(n, mu, 17);
  std::vector<int> counts(n, 0);
  const int rounds = 20000;
  for (int round = 0; round < rounds; ++round)
    for (std::size_t i : sampler.next()) ++counts[i];
  const double expected = rounds * static_cast<double>(mu) / n;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(counts[i], expected, 0.06 * expected) << "coordinate " << i;
}

TEST(CoordinateSampler, RejectsInvalidArguments) {
  EXPECT_THROW(CoordinateSampler(0, 1, 1), sa::PreconditionError);
  EXPECT_THROW(CoordinateSampler(5, 0, 1), sa::PreconditionError);
  EXPECT_THROW(CoordinateSampler(5, 6, 1), sa::PreconditionError);
}

}  // namespace
}  // namespace sa::data
