// Tests for feature scaling / preprocessing.
#include "data/scaling.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/synthetic.hpp"
#include "la/csc.hpp"
#include "la/vector_ops.hpp"

namespace sa::data {
namespace {

Dataset make_problem() {
  RegressionConfig cfg;
  cfg.num_points = 60;
  cfg.num_features = 25;
  cfg.density = 0.3;
  cfg.support_size = 5;
  cfg.seed = 3;
  return make_regression(cfg).dataset;
}

TEST(NormalizeColumns, ProducesUnitColumns) {
  const Dataset d = make_problem();
  const auto [scaled, scaling] = normalize_columns(d);
  const la::CscMatrix csc(scaled.a);
  const auto norms = csc.col_norms_squared();
  for (std::size_t j = 0; j < norms.size(); ++j) {
    if (norms[j] > 0.0) {
      EXPECT_NEAR(norms[j], 1.0, 1e-12) << "column " << j;
    }
  }
}

TEST(NormalizeColumns, PreservesSparsityPatternAndLabels) {
  const Dataset d = make_problem();
  const auto [scaled, scaling] = normalize_columns(d);
  EXPECT_EQ(scaled.nnz(), d.nnz());
  EXPECT_EQ(scaled.b, d.b);
  EXPECT_EQ(scaled.num_features(), d.num_features());
}

TEST(NormalizeColumns, EmptyColumnsGetUnitFactor) {
  Dataset d;
  d.name = "gap";
  d.a = la::CsrMatrix::from_triplets(2, 3, {{0, 0, 2.0}, {1, 2, 4.0}});
  d.b = {1.0, -1.0};
  const auto [scaled, scaling] = normalize_columns(d);
  EXPECT_DOUBLE_EQ(scaling.factors[1], 1.0);  // column 1 is empty
  EXPECT_DOUBLE_EQ(scaling.factors[0], 0.5);
  EXPECT_DOUBLE_EQ(scaling.factors[2], 0.25);
}

TEST(NormalizeColumns, UnscaleMapsSolutionBack) {
  // If x̂ solves the scaled problem, then A_scaled·x̂ = A·unscale(x̂):
  // predictions are invariant.
  const Dataset d = make_problem();
  const auto [scaled, scaling] = normalize_columns(d);
  std::vector<double> x_hat(d.num_features());
  for (std::size_t j = 0; j < x_hat.size(); ++j)
    x_hat[j] = std::sin(static_cast<double>(j));
  const std::vector<double> x = scaling.unscale_solution(x_hat);
  std::vector<double> pred_scaled(d.num_points());
  std::vector<double> pred_original(d.num_points());
  scaled.a.spmv(x_hat, pred_scaled);
  d.a.spmv(x, pred_original);
  for (std::size_t i = 0; i < pred_scaled.size(); ++i)
    EXPECT_NEAR(pred_scaled[i], pred_original[i], 1e-10);
}

TEST(NormalizeColumns, UnscaleRejectsWrongLength) {
  const auto [scaled, scaling] = normalize_columns(make_problem());
  EXPECT_THROW(scaling.unscale_solution(std::vector<double>(3, 0.0)),
               sa::PreconditionError);
}

TEST(NormalizeRows, ProducesUnitRows) {
  const Dataset d = make_problem();
  const Dataset scaled = normalize_rows(d);
  const auto norms = scaled.a.row_norms_squared();
  for (std::size_t i = 0; i < norms.size(); ++i) {
    if (norms[i] > 0.0) {
      EXPECT_NEAR(norms[i], 1.0, 1e-12) << "row " << i;
    }
  }
  EXPECT_EQ(scaled.b, d.b);
}

TEST(NormalizeRows, EmptyRowsUntouched) {
  Dataset d;
  d.name = "gap";
  d.a = la::CsrMatrix::from_triplets(3, 2, {{0, 0, 3.0}});
  d.b = {1.0, -1.0, 1.0};
  const Dataset scaled = normalize_rows(d);
  EXPECT_EQ(scaled.a.row_nnz(1), 0u);
  EXPECT_DOUBLE_EQ(scaled.a.row_values(0)[0], 1.0);
}

TEST(StandardizeLabels, ZeroMeanUnitVariance) {
  Dataset d = make_problem();
  const LabelStats stats = standardize_labels(d);
  EXPECT_GT(stats.stddev, 0.0);
  double mean = 0.0;
  for (double v : d.b) mean += v;
  mean /= static_cast<double>(d.b.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (double v : d.b) var += v * v;
  var /= static_cast<double>(d.b.size());
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(StandardizeLabels, ConstantLabelsCenteredOnly) {
  Dataset d;
  d.name = "const";
  d.a = la::CsrMatrix::from_triplets(3, 1, {{0, 0, 1.0}});
  d.b = {5.0, 5.0, 5.0};
  const LabelStats stats = standardize_labels(d);
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  for (double v : d.b) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StandardizeLabels, RoundTripRecoversOriginal) {
  Dataset d = make_problem();
  const std::vector<double> original = d.b;
  const LabelStats stats = standardize_labels(d);
  for (std::size_t i = 0; i < d.b.size(); ++i)
    EXPECT_NEAR(d.b[i] * stats.stddev + stats.mean, original[i], 1e-12);
}

}  // namespace
}  // namespace sa::data
