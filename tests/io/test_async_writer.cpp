// AsyncCheckpointWriter: the bytes on disk must be identical to the
// synchronous writer's, back-pressure must skip (never block) and be
// counted, the atomic tmp+rename contract must hold, and a failing write
// must be survivable.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/async_writer.hpp"
#include "io/snapshot.hpp"

namespace sa::io {
namespace {

std::vector<std::uint8_t> sample_image(const char* algorithm) {
  SnapshotWriter w;
  w.reset(algorithm);
  const double reals[] = {1.0, 2.5, -3.75};
  w.add_doubles("test/reals", reals);
  w.add_u64("test/word", 42);
  const std::span<const std::uint8_t> img = w.finalize();
  return std::vector<std::uint8_t>(img.begin(), img.end());
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  return read_snapshot_bytes(path);
}

TEST(AsyncWriter, BytesOnDiskMatchTheSynchronousWriter) {
  const std::string sync_path = ::testing::TempDir() + "aw_sync.snap";
  const std::string async_path = ::testing::TempDir() + "aw_async.snap";
  const std::vector<std::uint8_t> image = sample_image("aw-test");

  write_snapshot_bytes(image, sync_path, sync_path + ".tmp");
  {
    AsyncCheckpointWriter writer;
    ASSERT_TRUE(writer.submit(image, async_path, async_path + ".tmp"));
    writer.drain();
    EXPECT_EQ(writer.writes(), 1u);
    EXPECT_EQ(writer.skips(), 0u);
    EXPECT_FALSE(writer.busy());
  }
  EXPECT_EQ(file_bytes(async_path), file_bytes(sync_path));
  // Both parse as valid snapshots and the rename consumed the tmp file.
  EXPECT_EQ(SnapshotReader::read_file(async_path).algorithm(), "aw-test");
  std::FILE* tmp = std::fopen((async_path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "tmp file must be renamed away";
  if (tmp) std::fclose(tmp);
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

// Back-pressure: while a write is in flight, further submissions are
// refused immediately (skip-and-log), and a post-drain submission is
// accepted again.
TEST(AsyncWriter, SubmitSkipsInsteadOfBlockingWhileAWriteIsInFlight) {
  std::mutex lock;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> writes_started{0};
  AsyncCheckpointWriter writer(
      [&](std::span<const std::uint8_t>, const std::string&,
          const std::string&) {
        writes_started.fetch_add(1);
        std::unique_lock guard(lock);
        cv.wait(guard, [&] { return release; });
      });

  const std::vector<std::uint8_t> image = sample_image("aw-test");
  ASSERT_TRUE(writer.submit(image, "unused", "unused.tmp"));
  // Wait until the worker is genuinely inside the (blocked) write, so the
  // skips below exercise the in-flight window, not the pending one.
  while (writes_started.load() == 0) std::this_thread::yield();
  EXPECT_TRUE(writer.busy());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(writer.submit(image, "unused", "unused.tmp"));
  EXPECT_FALSE(writer.submit(image, "unused", "unused.tmp"));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 1.0) << "submit must refuse immediately, not block";
  EXPECT_EQ(writer.skips(), 2u);

  {
    std::scoped_lock guard(lock);
    release = true;
  }
  cv.notify_all();
  writer.drain();
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_TRUE(writer.submit(image, "unused", "unused.tmp"));
  writer.drain();
  EXPECT_EQ(writer.writes(), 2u);
  EXPECT_EQ(writer.skips(), 2u);
}

// A write that throws is logged and counted; the writer keeps serving.
TEST(AsyncWriter, WriteFailureIsCountedAndDoesNotKillTheWorker) {
  std::atomic<int> calls{0};
  AsyncCheckpointWriter writer(
      [&](std::span<const std::uint8_t> image, const std::string& path,
          const std::string& tmp_path) {
        if (calls.fetch_add(1) == 0)
          throw std::runtime_error("disk on fire");
        write_snapshot_bytes(image, path, tmp_path);
      });
  const std::string path = ::testing::TempDir() + "aw_retry.snap";
  const std::vector<std::uint8_t> image = sample_image("aw-test");
  ASSERT_TRUE(writer.submit(image, path, path + ".tmp"));
  writer.drain();
  EXPECT_EQ(writer.write_errors(), 1u);
  ASSERT_TRUE(writer.submit(image, path, path + ".tmp"));
  writer.drain();
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_EQ(file_bytes(path), image);
  std::remove(path.c_str());
}

// The destructor drains: an image submitted right before destruction is
// on disk afterwards (what EngineBase relies on when a solve ends between
// checkpoints).
TEST(AsyncWriter, DestructorDrainsTheLastSubmission) {
  const std::string path = ::testing::TempDir() + "aw_dtor.snap";
  const std::vector<std::uint8_t> image = sample_image("aw-test");
  {
    AsyncCheckpointWriter writer;
    ASSERT_TRUE(writer.submit(image, path, path + ".tmp"));
  }
  EXPECT_EQ(file_bytes(path), image);
  std::remove(path.c_str());
}

// Atomicity under interruption is inherited from write_snapshot_bytes'
// tmp+rename: a reader never sees a torn file because the target path is
// only ever touched by rename(2).  Simulate the SIGKILL-mid-write window
// by observing that the tmp path carries the partial state, not the
// target: while the (blocked) write function is "writing", the target
// still holds the PREVIOUS image.
TEST(AsyncWriter, TargetKeepsPreviousSnapshotWhileNextWriteIsInFlight) {
  const std::string path = ::testing::TempDir() + "aw_atomic.snap";
  const std::vector<std::uint8_t> first = sample_image("aw-first");
  const std::vector<std::uint8_t> second = sample_image("aw-second");

  std::mutex lock;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> call{0};
  AsyncCheckpointWriter writer(
      [&](std::span<const std::uint8_t> image, const std::string& target,
          const std::string& tmp_path) {
        if (call.fetch_add(1) == 1) {
          // Second write: stall before touching the disk, like a slow
          // device would.
          std::unique_lock guard(lock);
          cv.wait(guard, [&] { return release; });
        }
        write_snapshot_bytes(image, target, tmp_path);
      });

  ASSERT_TRUE(writer.submit(first, path, path + ".tmp"));
  writer.drain();
  ASSERT_TRUE(writer.submit(second, path, path + ".tmp"));
  while (call.load() < 2) std::this_thread::yield();
  // The in-flight window: the previous snapshot is still intact.
  EXPECT_EQ(file_bytes(path), first);
  {
    std::scoped_lock guard(lock);
    release = true;
  }
  cv.notify_all();
  writer.drain();
  EXPECT_EQ(file_bytes(path), second);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sa::io
