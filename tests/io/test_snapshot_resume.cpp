// Bitwise-resume conformance suite for the snapshot subsystem.
//
// The core guarantee: for every id in registered_algorithms(), a solve
// that is interrupted at round k, snapshotted, and resumed into a FRESH
// Solver produces a remaining trace and final solution that are
// bit-for-bit identical to an uninterrupted run — with every stopping
// criterion enabled.  Since the fixed reduction grouping landed, the
// guarantee is RANK-COUNT INVARIANT: a snapshot taken on P ranks resumes
// on Q ranks with the same bits for every (P, Q) in {1,2,4,8}², and
// uninterrupted traces themselves match bitwise across rank counts.
// Wall-clock readings and CommStats (whose message/word counts legitimately
// scale with the rank count) are the measured — not replayed — quantities
// excluded from cross-rank-count comparisons.
//
// Negative paths: truncated images, flipped bytes (checksum), wrong
// version, pre-grouping (version 2) files, doctored grouping sections,
// and wrong-algorithm snapshots are rejected with descriptive
// SnapshotErrors and leave the target solver untouched (it still finishes
// bitwise-identically to a never-restored run).
#include "io/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "data/synthetic.hpp"
#include "dist/thread_comm.hpp"

namespace sa::core {
namespace {

data::Dataset regression_problem() {
  data::RegressionConfig cfg;
  cfg.num_points = 64;
  cfg.num_features = 28;
  cfg.density = 0.4;
  cfg.support_size = 5;
  cfg.noise_sigma = 0.02;
  cfg.seed = 91;
  return data::make_regression(cfg).dataset;
}

data::Dataset classification_problem() {
  data::ClassificationConfig cfg;
  cfg.num_points = 56;
  cfg.num_features = 36;
  cfg.density = 0.4;
  cfg.seed = 92;
  return data::make_classification(cfg);
}

const data::Dataset& dataset_for(const SolverSpec& spec) {
  static const data::Dataset regression = regression_problem();
  static const data::Dataset classification = classification_problem();
  return spec.family() == SolverFamily::kSvm ? classification : regression;
}

/// Every stopping criterion enabled: the tolerances are tight enough to
/// stay inactive over H iterations (so the parity comparison sees the
/// whole run) but the piggy-backed machinery is exercised on every round.
SolverSpec conformance_spec(const std::string& id) {
  SolverSpec spec = SolverSpec::make(id);
  spec.max_iterations = 240;
  spec.trace_every = 60;
  spec.seed = 7;
  spec.s = 4;
  spec.objective_tolerance = 1e-300;
  spec.wall_clock_budget = 1e9;
  switch (spec.family()) {
    case SolverFamily::kLasso:
      spec.lambda = 0.05;
      spec.block_size = 2;
      spec.accelerated = true;
      break;
    case SolverFamily::kGroupLasso:
      spec.lambda = 0.1;
      spec.groups = GroupStructure::uniform(
          regression_problem().num_features(), 4);
      break;
    case SolverFamily::kSvm:
      spec.lambda = 1.0;
      spec.loss = SvmLoss::kL2;
      spec.gap_tolerance = 1e-300;
      break;
    case SolverFamily::kUnknown:
      break;
  }
  return spec;
}

data::Partition partition_for(const SolverSpec& spec,
                              const data::Dataset& d, int ranks) {
  // The chunk-grid-aligned partition solve_on_ranks builds: every
  // reduction chunk is single-owner, which is what makes the chunked
  // round sums — and the resumes below — rank-count invariant.
  return partition_for_ranks(d, spec, ranks);
}

std::unique_ptr<Solver> fresh_solver(dist::Communicator& comm,
                                     const SolverSpec& spec,
                                     const data::Dataset& d) {
  return make_solver(comm, d, partition_for(spec, d, comm.size()), spec);
}

void expect_bits_equal(std::span<const double> a, std::span<const double> b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

void expect_stats_equal(const dist::CommStats& a, const dist::CommStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.flops, b.flops) << what;
  EXPECT_EQ(a.replicated_flops, b.replicated_flops) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.words, b.words) << what;
  EXPECT_EQ(a.collectives, b.collectives) << what;
  for (std::size_t s = 0; s < dist::kRoundSectionCount; ++s) {
    EXPECT_EQ(a.sections[s].collectives, b.sections[s].collectives)
        << what << " section " << s;
    EXPECT_EQ(a.sections[s].words, b.sections[s].words)
        << what << " section " << s;
  }
}

/// Full bitwise result comparison — everything except the measured
/// wall-clock fields.
void expect_results_identical(const SolveResult& a, const SolveResult& b,
                              const std::string& what) {
  EXPECT_EQ(a.algorithm, b.algorithm) << what;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << what;
  expect_bits_equal(a.x, b.x, what + ": x");
  expect_bits_equal(a.alpha, b.alpha, what + ": alpha");
  ASSERT_EQ(a.trace.points.size(), b.trace.points.size()) << what;
  for (std::size_t i = 0; i < a.trace.points.size(); ++i) {
    EXPECT_EQ(a.trace.points[i].iteration, b.trace.points[i].iteration)
        << what << " point " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.trace.points[i].objective),
              std::bit_cast<std::uint64_t>(b.trace.points[i].objective))
        << what << " point " << i;
    expect_stats_equal(a.trace.points[i].stats, b.trace.points[i].stats,
                       what + " point stats");
  }
  EXPECT_EQ(a.trace.iterations_run, b.trace.iterations_run) << what;
  expect_stats_equal(a.trace.final_stats, b.trace.final_stats,
                     what + ": final stats");
}

// ---------------------------------------------------------------------
// Serial conformance: every registered id
// ---------------------------------------------------------------------

TEST(SnapshotResume, SerialResumeIsBitwiseIdenticalForEveryAlgorithm) {
  for (const std::string& id : registered_algorithms()) {
    SCOPED_TRACE(id);
    const SolverSpec spec = conformance_spec(id);
    const data::Dataset& d = dataset_for(spec);

    dist::SerialComm ref_comm;
    const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

    // Interrupt mid-solve, snapshot, resume into a FRESH solver.
    dist::SerialComm comm_a;
    const std::unique_ptr<Solver> interrupted =
        fresh_solver(comm_a, spec, d);
    interrupted->step(spec.max_iterations / 3);
    const std::vector<std::uint8_t> image = interrupted->snapshot();

    dist::SerialComm comm_b;
    const std::unique_ptr<Solver> resumed = fresh_solver(comm_b, spec, d);
    resumed->restore(image);
    EXPECT_EQ(resumed->iterations_run(), interrupted->iterations_run());
    expect_results_identical(reference, resumed->run(), id + " resumed");

    // Taking the snapshot must not perturb the interrupted solver either.
    expect_results_identical(reference, interrupted->run(),
                             id + " continued after snapshot");
  }
}

TEST(SnapshotResume, SerialFileRoundTripIsBitwiseIdentical) {
  const std::string path = ::testing::TempDir() + "sa_snapshot_serial.snap";
  for (const std::string& id : registered_algorithms()) {
    SCOPED_TRACE(id);
    const SolverSpec spec = conformance_spec(id);
    const data::Dataset& d = dataset_for(spec);

    dist::SerialComm ref_comm;
    const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

    dist::SerialComm comm_a;
    const std::unique_ptr<Solver> interrupted =
        fresh_solver(comm_a, spec, d);
    interrupted->step(spec.max_iterations / 2);
    interrupted->snapshot_to_file(path);

    dist::SerialComm comm_b;
    const std::unique_ptr<Solver> resumed = fresh_solver(comm_b, spec, d);
    resumed->restore_from_file(path);
    expect_results_identical(reference, resumed->run(), id + " from file");
  }
}

// ---------------------------------------------------------------------
// 4-rank conformance: every registered id
// ---------------------------------------------------------------------

void multi_rank_resume_sweep(int ranks) {
  for (const std::string& id : registered_algorithms()) {
    SCOPED_TRACE(id);
    const SolverSpec spec = conformance_spec(id);
    const data::Dataset& d = dataset_for(spec);

    // Per-rank results: [rank] → (reference, resumed, continued).
    std::vector<SolveResult> reference(ranks), resumed(ranks),
        continued(ranks);
    std::mutex lock;
    dist::run_distributed(ranks, [&](dist::Communicator& comm) {
      // One Communicator serves all three solves on this rank: zero its
      // metering between them so each solve starts from clean counters
      // (restore() installs the snapshot's counters itself).
      comm.set_stats(dist::CommStats{});
      SolveResult ref = fresh_solver(comm, spec, d)->run();

      comm.set_stats(dist::CommStats{});
      const std::unique_ptr<Solver> interrupted =
          fresh_solver(comm, spec, d);
      interrupted->step(spec.max_iterations / 3);
      // Each rank snapshots and restores its own image (the in-memory
      // image carries this rank's trace counters, so parity holds
      // per-rank, not just on rank 0).
      const std::vector<std::uint8_t> image = interrupted->snapshot();
      SolveResult cont = interrupted->run();

      const std::unique_ptr<Solver> fresh = fresh_solver(comm, spec, d);
      fresh->restore(image);
      SolveResult res = fresh->run();

      std::scoped_lock guard(lock);
      reference[comm.rank()] = std::move(ref);
      resumed[comm.rank()] = std::move(res);
      continued[comm.rank()] = std::move(cont);
    });
    for (int r = 0; r < ranks; ++r) {
      const std::string tag = id + " rank " + std::to_string(r);
      expect_results_identical(reference[r], resumed[r], tag + " resumed");
      expect_results_identical(reference[r], continued[r],
                               tag + " continued");
    }
  }
}

TEST(SnapshotResume, FourRankResumeIsBitwiseIdenticalForEveryAlgorithm) {
  multi_rank_resume_sweep(4);
}

// CI's 8-rank smoke job sets SA_SMOKE_RANKS to sweep resume parity across
// a wider team (any rank count >= 2 works; self-skips when unset).
TEST(SnapshotResume, RankSweepFromEnvironment) {
  const char* env = std::getenv("SA_SMOKE_RANKS");
  const int p = env ? std::atoi(env) : 0;
  if (p < 2) GTEST_SKIP() << "set SA_SMOKE_RANKS >= 2 to run the sweep";
  multi_rank_resume_sweep(p);
}

TEST(SnapshotResume, FourRankFileRoundTripMatchesRankZero) {
  constexpr int kRanks = 4;
  const std::string path = ::testing::TempDir() + "sa_snapshot_4rank.snap";
  const SolverSpec spec = conformance_spec("sa-lasso");
  const data::Dataset& d = dataset_for(spec);

  std::vector<SolveResult> reference(kRanks), resumed(kRanks);
  std::mutex lock;
  dist::run_distributed(kRanks, [&](dist::Communicator& comm) {
    comm.set_stats(dist::CommStats{});
    SolveResult ref = fresh_solver(comm, spec, d)->run();

    comm.set_stats(dist::CommStats{});
    const std::unique_ptr<Solver> interrupted = fresh_solver(comm, spec, d);
    interrupted->step(100);
    interrupted->snapshot_to_file(path);  // collective; rank 0 writes

    const std::unique_ptr<Solver> fresh = fresh_solver(comm, spec, d);
    fresh->restore_from_file(path);  // collective; rank 0 reads + scatters
    SolveResult res = fresh->run();

    std::scoped_lock guard(lock);
    reference[comm.rank()] = std::move(ref);
    resumed[comm.rank()] = std::move(res);
  });
  // The file carries rank 0's counters; iterates are replicated, so every
  // rank's resumed solution and objectives match its reference bitwise.
  for (int r = 0; r < kRanks; ++r) {
    const std::string tag = "rank " + std::to_string(r);
    expect_bits_equal(reference[r].x, resumed[r].x, tag + ": x");
    ASSERT_EQ(reference[r].trace.points.size(),
              resumed[r].trace.points.size());
    for (std::size_t i = 0; i < reference[r].trace.points.size(); ++i) {
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(
              reference[r].trace.points[i].objective),
          std::bit_cast<std::uint64_t>(resumed[r].trace.points[i].objective))
          << tag << " point " << i;
    }
  }
  expect_results_identical(reference[0], resumed[0], "rank 0");
}

// ---------------------------------------------------------------------
// Rank-count invariance: the fixed reduction grouping makes every
// cross-rank sum accumulate in the same global chunk order on every rank
// count, so entire trajectories — not just snapshots — are bitwise
// identical across P.  CommStats are the one excluded quantity: message
// and word counts legitimately scale with log P.
// ---------------------------------------------------------------------

/// Bitwise comparison of everything that must be rank-count invariant:
/// solution, duals, stop reason, and the trace's iterations + objectives.
void expect_equivalent_ignoring_stats(const SolveResult& a,
                                      const SolveResult& b,
                                      const std::string& what) {
  EXPECT_EQ(a.algorithm, b.algorithm) << what;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << what;
  expect_bits_equal(a.x, b.x, what + ": x");
  expect_bits_equal(a.alpha, b.alpha, what + ": alpha");
  ASSERT_EQ(a.trace.points.size(), b.trace.points.size()) << what;
  for (std::size_t i = 0; i < a.trace.points.size(); ++i) {
    EXPECT_EQ(a.trace.points[i].iteration, b.trace.points[i].iteration)
        << what << " point " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.trace.points[i].objective),
              std::bit_cast<std::uint64_t>(b.trace.points[i].objective))
        << what << " point " << i;
  }
  EXPECT_EQ(a.trace.iterations_run, b.trace.iterations_run) << what;
}

/// Shorter spec for the O(P·Q) sweeps: still several rounds and trace
/// points on both sides of every interrupt.
SolverSpec cross_rank_spec(const std::string& id) {
  SolverSpec spec = conformance_spec(id);
  spec.max_iterations = 120;
  spec.trace_every = 30;
  return spec;
}

/// Rank 0's result of an uninterrupted `ranks`-rank solve.
SolveResult run_on_ranks(const SolverSpec& spec, const data::Dataset& d,
                         int ranks) {
  SolveResult out;
  std::mutex lock;
  dist::run_distributed(ranks, [&](dist::Communicator& comm) {
    SolveResult r = fresh_solver(comm, spec, d)->run();
    if (comm.rank() == 0) {
      std::scoped_lock guard(lock);
      out = std::move(r);
    }
  });
  return out;
}

TEST(SnapshotResume, TracesAreBitwiseIdenticalAcrossRankCounts) {
  // Serial, 2-, 3-, 4-, and 8-rank uninterrupted solves produce the SAME
  // bits for every algorithm: solution, duals, every traced objective.
  // (3 exercises the non-power-of-two tree-allreduce path end to end.)
  for (const std::string& id : registered_algorithms()) {
    SCOPED_TRACE(id);
    const SolverSpec spec = cross_rank_spec(id);
    const data::Dataset& d = dataset_for(spec);

    dist::SerialComm ref_comm;
    const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();
    for (int ranks : {2, 3, 4, 8}) {
      expect_equivalent_ignoring_stats(
          reference, run_on_ranks(spec, d, ranks),
          id + " on " + std::to_string(ranks) + " ranks");
    }
  }
}

TEST(SnapshotResume, CrossRankCountResumeIsBitwiseForEveryAlgorithm) {
  // Elastic resume: checkpoint at P ranks, resume at Q ranks, for every
  // (P, Q) in {1,2,4,8}² — the continued run lands on the uninterrupted
  // serial reference bitwise (solution, duals, stop reason, trace).
  const std::string path =
      ::testing::TempDir() + "sa_snapshot_cross_rank.snap";
  for (const std::string& id : registered_algorithms()) {
    SCOPED_TRACE(id);
    const SolverSpec spec = cross_rank_spec(id);
    const data::Dataset& d = dataset_for(spec);

    dist::SerialComm ref_comm;
    const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

    for (int p : {1, 2, 4, 8}) {
      dist::run_distributed(p, [&](dist::Communicator& comm) {
        const std::unique_ptr<Solver> solver = fresh_solver(comm, spec, d);
        solver->step(spec.max_iterations / 3);
        solver->snapshot_to_file(path);  // collective; rank 0 writes
      });
      for (int q : {1, 2, 4, 8}) {
        const std::string tag = id + " P=" + std::to_string(p) +
                                " -> Q=" + std::to_string(q);
        std::vector<SolveResult> resumed(q);
        std::mutex lock;
        dist::run_distributed(q, [&](dist::Communicator& comm) {
          const std::unique_ptr<Solver> solver =
              fresh_solver(comm, spec, d);
          solver->restore_from_file(path);
          SolveResult r = solver->run();
          std::scoped_lock guard(lock);
          resumed[comm.rank()] = std::move(r);
        });
        for (int r = 0; r < q; ++r)
          expect_equivalent_ignoring_stats(
              reference, resumed[r], tag + " rank " + std::to_string(r));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Negative paths
// ---------------------------------------------------------------------

class SnapshotNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = conformance_spec("sa-lasso");
    const data::Dataset& d = dataset_for(spec_);
    dist::SerialComm ref_comm;
    reference_ = fresh_solver(ref_comm, spec_, d)->run();

    dist::SerialComm comm;
    const std::unique_ptr<Solver> source = fresh_solver(comm, spec_, d);
    source->step(80);
    image_ = source->snapshot();
  }

  /// Asserts that restoring `bytes` throws a SnapshotError whose message
  /// contains `needle`, and that the failed restore left the solver
  /// untouched: it still finishes bitwise-identically to the reference.
  void expect_rejected(const std::vector<std::uint8_t>& bytes,
                       const std::string& needle) {
    dist::SerialComm comm;
    const std::unique_ptr<Solver> solver =
        fresh_solver(comm, spec_, dataset_for(spec_));
    try {
      solver->restore(bytes);
      FAIL() << "expected SnapshotError (" << needle << ")";
    } catch (const io::SnapshotError& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << "message was: " << error.what();
    }
    EXPECT_EQ(solver->iterations_run(), 0u) << "solver was touched";
    expect_results_identical(reference_, solver->run(),
                             "after rejected restore (" + needle + ")");
  }

  SolverSpec spec_;
  SolveResult reference_;
  std::vector<std::uint8_t> image_;
};

TEST_F(SnapshotNegative, TruncatedImagesAreRejected) {
  std::vector<std::uint8_t> tiny(image_.begin(), image_.begin() + 10);
  expect_rejected(tiny, "truncated");
  std::vector<std::uint8_t> clipped(image_.begin(), image_.end() - 7);
  expect_rejected(clipped, "checksum");
}

TEST_F(SnapshotNegative, FlippedByteFailsTheChecksum) {
  std::vector<std::uint8_t> corrupted = image_;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  expect_rejected(corrupted, "checksum");
}

TEST_F(SnapshotNegative, WrongVersionIsRejected) {
  std::vector<std::uint8_t> wrong = image_;
  wrong[8] += 1;  // u32 version field lives at offset 8
  expect_rejected(wrong, "version");
}

// FNV-1a over the checksummed region (bytes 24..end), written back into
// the u64 checksum field at offset 16 — lets a test doctor section
// payloads and still present a checksum-valid image, so the rejection it
// asserts comes from the SEMANTIC validation, not the integrity check.
void restamp_checksum(std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 24; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  std::memcpy(bytes.data() + 16, &h, sizeof(h));
}

TEST_F(SnapshotNegative, PreGroupingVersionIsRejectedDescriptively) {
  // A format-2 snapshot predates the fixed reduction grouping: its sums
  // were accumulated per-rank, so it cannot be continued bitwise.  The
  // error says so instead of a generic unsupported-version line.  (The
  // version gate runs before the checksum, so no restamp is needed.)
  std::vector<std::uint8_t> old = image_;
  old[8] = 2;
  expect_rejected(old, "predates the fixed reduction grouping");
}

TEST_F(SnapshotNegative, DoctoredGroupingVersionIsRejected) {
  // Flip the core/grouping section's version word (the first u64 of its
  // payload) and restamp the checksum: the reader must reject on the
  // grouping version specifically, naming both versions.
  std::vector<std::uint8_t> doctored = image_;
  const std::string name = "core/grouping";
  const auto it = std::search(doctored.begin(), doctored.end(),
                              name.begin(), name.end());
  ASSERT_NE(it, doctored.end()) << "snapshot lacks the grouping section";
  // Section layout: name zero-padded to 8 bytes, then the u64 count,
  // then the payload ([version, chunk, extent]).
  const std::size_t payload =
      static_cast<std::size_t>(it - doctored.begin()) +
      ((name.size() + 7) & ~std::size_t{7}) + 8;
  const std::uint64_t foreign = 999;
  std::memcpy(doctored.data() + payload, &foreign, sizeof(foreign));
  restamp_checksum(doctored);
  expect_rejected(doctored, "grouping version");
}

TEST_F(SnapshotNegative, GroupingChunkMismatchIsRejected) {
  // Same algorithm and spec fingerprint, but the target solver runs a
  // different reduction-chunk grid: its folds would associate differently,
  // so the restore is refused, naming the chunk sizes.
  SolverSpec other = spec_;
  other.reduction_chunk = 8;  // the snapshot's auto grid uses chunk 1
  dist::SerialComm comm;
  const std::unique_ptr<Solver> solver =
      fresh_solver(comm, other, dataset_for(other));
  try {
    solver->restore(image_);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("reduction grouping chunk size"), std::string::npos)
        << what;
  }
  EXPECT_EQ(solver->iterations_run(), 0u);
}

TEST_F(SnapshotNegative, BadMagicIsRejected) {
  std::vector<std::uint8_t> wrong = image_;
  wrong[0] = 'X';
  expect_rejected(wrong, "magic");
}

TEST_F(SnapshotNegative, WrongAlgorithmSnapshotIsRejected) {
  // A classical-lasso snapshot must not restore into this sa-lasso
  // solver; the error names both ids.
  SolverSpec other = conformance_spec("lasso");
  dist::SerialComm comm;
  const std::unique_ptr<Solver> source =
      fresh_solver(comm, other, dataset_for(other));
  source->step(20);
  std::vector<std::uint8_t> foreign = source->snapshot();
  expect_rejected(foreign, "algorithm mismatch");
  expect_rejected(foreign, "lasso");
  expect_rejected(foreign, "sa-lasso");
}

TEST_F(SnapshotNegative, SpecMismatchIsRejected) {
  // Same algorithm id, different λ: the fingerprint catches silent
  // trajectory forks.
  SolverSpec other = spec_;
  other.lambda = 0.25;
  dist::SerialComm comm;
  const std::unique_ptr<Solver> solver =
      fresh_solver(comm, other, dataset_for(other));
  try {
    solver->restore(image_);
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("spec mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("lambda"), std::string::npos) << what;
  }
  EXPECT_EQ(solver->iterations_run(), 0u);
}

TEST_F(SnapshotNegative, MissingFileIsRejectedAndNamesThePath) {
  dist::SerialComm comm;
  const std::unique_ptr<Solver> solver =
      fresh_solver(comm, spec_, dataset_for(spec_));
  try {
    solver->restore_from_file("/nonexistent/sa-opt-missing.snap");
    FAIL() << "expected SnapshotError";
  } catch (const io::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("sa-opt-missing.snap"),
              std::string::npos)
        << error.what();
  }
  expect_results_identical(reference_, solver->run(),
                           "after missing-file restore");
}

// ---------------------------------------------------------------------
// Torn tmp-file: a write killed mid-flight must not cost the previous
// checkpoint (the atomic tmp + rename guarantee, exercised end to end)
// ---------------------------------------------------------------------

TEST(SnapshotResume, TornTmpFileLeavesThePreviousCheckpointLoadable) {
  const std::string path = ::testing::TempDir() + "sa_torn.snap";
  const std::string tmp = path + ".tmp";
  const SolverSpec spec = conformance_spec("sa-lasso");
  const data::Dataset& d = dataset_for(spec);

  dist::SerialComm ref_comm;
  const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

  // A valid checkpoint on disk…
  dist::SerialComm comm;
  const std::unique_ptr<Solver> source = fresh_solver(comm, spec, d);
  source->step(80);
  source->snapshot_to_file(path);

  // …then the next write is killed mid-flight: the tmp file holds only
  // the first half of a real image.
  const std::vector<std::uint8_t> image = source->snapshot();
  {
    std::ofstream torn(tmp, std::ios::binary | std::ios::trunc);
    torn.write(reinterpret_cast<const char*>(image.data()),
               static_cast<std::streamsize>(image.size() / 2));
  }

  // The previous checkpoint is untouched and resumes bitwise.
  dist::SerialComm comm_b;
  const std::unique_ptr<Solver> resumed = fresh_solver(comm_b, spec, d);
  resumed->restore_from_file(path);
  expect_results_identical(reference, resumed->run(),
                           "resumed beside a torn tmp");

  // The torn tmp itself is rejected, never silently half-loaded.
  dist::SerialComm comm_c;
  const std::unique_ptr<Solver> victim = fresh_solver(comm_c, spec, d);
  EXPECT_THROW(victim->restore_from_file(tmp), io::SnapshotError);
  expect_results_identical(reference, victim->run(),
                           "after rejected torn tmp");
}

TEST(SnapshotResume, StaleTornTmpDoesNotPoisonLaterCheckpoints) {
  // A stale torn tmp from a killed run sits at path.tmp; a fresh
  // checkpointed solve over the same path must overwrite it and leave a
  // resumable checkpoint behind.
  const std::string path = ::testing::TempDir() + "sa_stale_tmp.snap";
  SolverSpec spec = conformance_spec("sa-lasso");
  const data::Dataset& d = dataset_for(spec);
  {
    std::ofstream stale(path + ".tmp", std::ios::binary | std::ios::trunc);
    stale << "garbage left by a killed writer";
  }

  dist::SerialComm ref_comm;
  const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

  SolverSpec ckpt_spec = spec;
  ckpt_spec.checkpoint_path = path;
  ckpt_spec.checkpoint_every = 100;
  const SolveResult checkpointed = solve(d, ckpt_spec);
  expect_results_identical(reference, checkpointed,
                           "checkpointed over a stale tmp");

  const SolveResult resumed = solve(d, spec, path);
  expect_results_identical(reference, resumed, "resumed over a stale tmp");
}

// ---------------------------------------------------------------------
// Checkpoint-every observer path
// ---------------------------------------------------------------------

TEST(SnapshotResume, CheckpointEveryWritesAResumableFile) {
  const std::string path = ::testing::TempDir() + "sa_ckpt_every.snap";
  SolverSpec spec = conformance_spec("sa-lasso");
  const data::Dataset& d = dataset_for(spec);

  dist::SerialComm ref_comm;
  const SolveResult reference = fresh_solver(ref_comm, spec, d)->run();

  // The checkpointed run itself must match the reference bitwise (the
  // snapshot writes restore the metering they touch).
  SolverSpec ckpt_spec = spec;
  ckpt_spec.checkpoint_path = path;
  ckpt_spec.checkpoint_every = 100;
  const SolveResult checkpointed = solve(d, ckpt_spec);
  expect_results_identical(reference, checkpointed, "checkpointed run");

  // The last checkpoint on disk resumes to the same result.  Resume under
  // the plain spec (no further checkpoints).
  const SolveResult resumed = solve(d, spec, path);
  expect_results_identical(reference, resumed, "resumed from checkpoint");
}

TEST(SnapshotResume, CheckpointCadenceRequiresAPath) {
  SolverSpec spec = conformance_spec("sa-lasso");
  spec.checkpoint_every = 10;  // no path
  EXPECT_THROW(solve(dataset_for(spec), spec), PreconditionError);
}

// ---------------------------------------------------------------------
// Writer/reader unit coverage
// ---------------------------------------------------------------------

TEST(SnapshotFormat, WriterReaderRoundTrip) {
  io::SnapshotWriter writer;
  writer.reset("unit-test");
  const std::vector<double> reals = {1.5, -0.0, 1e-300, 42.0};
  const std::vector<std::uint64_t> words = {0, 1, ~0ULL};
  writer.add_doubles("reals", reals);
  writer.add_u64s("words", words);
  writer.add_double("scalar", 2.25);
  writer.add_u64("word", 77);
  const auto image = writer.finalize();

  const io::SnapshotReader reader = io::SnapshotReader::parse(image);
  EXPECT_EQ(reader.algorithm(), "unit-test");
  EXPECT_TRUE(reader.has("reals"));
  EXPECT_FALSE(reader.has("missing"));
  expect_bits_equal(reader.doubles("reals", 4), reals, "reals");
  const auto w = reader.u64s("words", 3);
  for (std::size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(w[i], words[i]);
  EXPECT_EQ(reader.real("scalar"), 2.25);
  EXPECT_EQ(reader.word("word"), 77u);
  EXPECT_THROW(reader.doubles("words"), io::SnapshotError);
  EXPECT_THROW(reader.u64s("reals"), io::SnapshotError);
  EXPECT_THROW(reader.doubles("reals", 3), io::SnapshotError);
  EXPECT_THROW(reader.doubles("missing"), io::SnapshotError);
}

TEST(SnapshotFormat, ResetReusesTheWriter) {
  io::SnapshotWriter writer;
  writer.reset("first");
  writer.add_double("a", 1.0);
  const std::vector<std::uint8_t> first(writer.finalize().begin(),
                                        writer.finalize().end());
  writer.reset("second");
  writer.add_double("a", 2.0);
  const auto second = io::SnapshotReader::parse(writer.finalize());
  EXPECT_EQ(second.algorithm(), "second");
  EXPECT_EQ(second.real("a"), 2.0);
  const auto parsed_first = io::SnapshotReader::parse(first);
  EXPECT_EQ(parsed_first.algorithm(), "first");
  EXPECT_EQ(parsed_first.real("a"), 1.0);
}

}  // namespace
}  // namespace sa::core
