// sa_lint CLI: lints every TU under <root>/src and exits non-zero when
// any architectural invariant is violated.  Run locally with
//
//   ./build/sa_lint .          # from the repo root
//
// and see the top-level README ("Static analysis & invariants") for the
// rule families and the waiver grammar.
#include <cstdio>
#include <exception>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: sa_lint [--quiet] [repo-root]\n"
                  "lints <repo-root>/src; exits 1 on any diagnostic\n");
      return 0;
    } else {
      root = arg;
    }
  }
  try {
    const sa_lint::LintResult result = sa_lint::run_lint(root);
    for (const sa_lint::Diagnostic& d : result.diagnostics)
      std::printf("%s\n", sa_lint::format(d).c_str());
    if (!quiet || !result.diagnostics.empty())
      std::printf("sa_lint: %zu files, %zu diagnostic%s\n",
                  result.files_scanned, result.diagnostics.size(),
                  result.diagnostics.size() == 1 ? "" : "s");
    return result.diagnostics.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sa_lint: %s\n", error.what());
    return 2;
  }
}
