// Minimal C++ tokenizer for sa_lint.
//
// The linter does not need a real C++ front end: its rules key on
// identifier-level facts (which names a function body calls, which repo
// headers a file includes, where an SA_STEADY_STATE marker sits), so a
// comment/string/preprocessor-aware token stream is exactly enough — and
// keeps the tool LLVM-free, buildable with the project itself.
//
// The lexer also owns the suppression grammar.  A comment of the form
//
//   // sa-lint: allow(rule[,rule...]): justification text
//
// suppresses the named rule(s) on the comment's own line and on the line
// below it (so it works both trailing and standalone).  A suppression
// without a justification is itself a diagnostic: waivers must say why.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sa_lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;
  int line;
};

struct Include {
  int line;
  std::string target;  // the quoted path, e.g. "core/solver.hpp"
};

struct Suppression {
  std::set<std::string> rules;
  bool justified = false;
};

struct LexedFile {
  std::string rel;  // path relative to the lint root, '/'-separated
  std::vector<Token> tokens;
  std::vector<Include> includes;           // repo-local ("quoted") includes
  std::map<int, Suppression> suppressions;  // keyed by comment line

  /// True when `rule` is waived on `line` (comment on the same line or
  /// the line above).
  bool suppressed(const std::string& rule, int line) const;
};

/// Tokenizes one file.  Comments and preprocessor directives are consumed
/// (never tokenized), except that quoted #include targets are recorded
/// and sa-lint suppression comments are parsed.
LexedFile lex_file(const std::string& abs_path, const std::string& rel);

}  // namespace sa_lint
