// sa_lint — static invariant checker for the sa-opt codebase.
//
// Enforces four rule families over every translation unit under
// <root>/src (LLVM-free: a tokenizer, an include-graph walker, and a
// name-resolved call graph are enough for invariants that are
// architectural rather than semantic):
//
//   [alloc]        Functions annotated SA_STEADY_STATE (common/
//                  annotate.hpp) must not reach heap allocation — `new`,
//                  malloc-family calls, growing STL calls (push_back,
//                  resize, insert, ...), std::function, unordered
//                  containers, string building — through any same-repo
//                  call chain.
//   [collective]   Only the EngineBase TU (src/core/solver.cpp) and the
//                  dist layer may call Communicator::allreduce* /
//                  broadcast_bytes: "exactly one collective per round"
//                  cannot regress from a stray call site.
//   [determinism]  Engine/kernel TUs (core, la, dist) may not use
//                  std::random_device, rand/srand, time(), non-SplitMix64
//                  RNG engines, or iterate unordered containers (their
//                  order is unspecified — poison for bitwise-reproducible
//                  reductions).
//   [layering]     The include graph must respect the layer order
//                  (common < {la, io} < {dist, data} < perf < core) and
//                  contain no cycles.
//
// Waivers: `// sa-lint: allow(rule): justification` on (or above) the
// offending line.  A waiver without a justification is a [suppression]
// diagnostic — every exception must say why it is sound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sa_lint {

struct Diagnostic {
  std::string file;  // relative to the lint root
  int line = 0;
  std::string rule;
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned = 0;
};

/// Lints every .hpp/.cpp under <root>/src.  Diagnostics come back sorted
/// by (file, line, rule) and deduplicated.
LintResult run_lint(const std::string& root);

/// Formats one diagnostic the way the CLI prints it:
/// "file:line: error: [rule] message".
std::string format(const Diagnostic& d);

}  // namespace sa_lint
