#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sa_lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses a `sa-lint: allow(...)` directive out of a comment's text and
/// records it against `line`.
void parse_directive(const std::string& comment, int line, LexedFile& out) {
  const std::string key = "sa-lint:";
  const std::size_t at = comment.find(key);
  if (at == std::string::npos) return;
  std::size_t i = at + key.size();
  while (i < comment.size() && comment[i] == ' ') ++i;
  const std::string allow = "allow(";
  if (comment.compare(i, allow.size(), allow) != 0) return;
  i += allow.size();
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) return;
  Suppression s;
  std::string rule;
  for (std::size_t j = i; j <= close; ++j) {
    const char c = comment[j];
    if (c == ',' || c == ')') {
      if (!rule.empty()) s.rules.insert(rule);
      rule.clear();
    } else if (c != ' ') {
      rule += c;
    }
  }
  // Justification: anything substantive after "):" or ") --".
  std::size_t j = close + 1;
  while (j < comment.size() && (comment[j] == ' ' || comment[j] == ':' ||
                                comment[j] == '-'))
    ++j;
  std::size_t letters = 0;
  for (std::size_t k = j; k < comment.size(); ++k)
    if (ident_char(comment[k])) ++letters;
  s.justified = letters >= 3;
  out.suppressions[line] = s;
}

}  // namespace

bool LexedFile::suppressed(const std::string& rule, int line) const {
  for (const int l : {line, line - 1}) {
    const auto it = suppressions.find(l);
    if (it != suppressions.end() && it->second.rules.count(rule) > 0)
      return true;
  }
  return false;
}

LexedFile lex_file(const std::string& abs_path, const std::string& rel) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("sa_lint: cannot read " + abs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();

  LexedFile out;
  out.rel = rel;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i)
      if (src[i] == '\n') ++line;
  };

  while (i < n) {
    const char c = src[i];
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int at = line;
      std::string text;
      while (i < n && src[i] != '\n') text += src[i++];
      parse_directive(text, at, out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::string text;
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        text += src[i];
        advance(1);
      }
      advance(2);
      // Attach to the line the comment ENDS on: a standalone block
      // comment suppresses the statement below it, like a line comment.
      parse_directive(text, line, out);
      continue;
    }
    // Preprocessor directive: consumed whole (with continuations); only
    // quoted #include targets surface as data.
    if (c == '#') {
      std::string text;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          text += ' ';
          continue;
        }
        if (src[i] == '\n') break;
        text += src[i];
        advance(1);
      }
      std::size_t p = 1;
      while (p < text.size() && text[p] == ' ') ++p;
      if (text.compare(p, 7, "include") == 0) {
        const std::size_t open = text.find('"', p);
        if (open != std::string::npos) {
          const std::size_t end = text.find('"', open + 1);
          if (end != std::string::npos)
            out.includes.push_back(
                {line, text.substr(open + 1, end - open - 1)});
        }
      }
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      const int at = line;
      advance(d - i + 1);
      const std::size_t end = src.find(closer, i);
      advance((end == std::string::npos ? n : end + closer.size()) - i);
      out.tokens.push_back({Token::Kind::kString, "", at});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at = line;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') advance(1);
        advance(1);
      }
      advance(1);
      out.tokens.push_back({quote == '"' ? Token::Kind::kString
                                         : Token::Kind::kChar,
                            "", at});
      continue;
    }
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    if (ident_start(c)) {
      std::string text;
      const int at = line;
      while (i < n && ident_char(src[i])) text += src[i++];
      out.tokens.push_back({Token::Kind::kIdent, text, at});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      const int at = line;
      while (i < n && (ident_char(src[i]) || src[i] == '.')) text += src[i++];
      out.tokens.push_back({Token::Kind::kNumber, text, at});
      continue;
    }
    // Punctuation.  "::" and "->" matter to the parser (qualified names,
    // member calls); everything else is emitted one char at a time.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({Token::Kind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({Token::Kind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

}  // namespace sa_lint
