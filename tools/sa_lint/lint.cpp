#include "lint.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "lexer.hpp"

namespace sa_lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------

const std::set<std::string>& keywords() {
  static const std::set<std::string> k = {
      "if",       "for",     "while",    "switch",     "return",
      "sizeof",   "catch",   "decltype", "alignof",    "alignas",
      "noexcept", "typeid",  "throw",    "co_await",   "co_return",
      "co_yield", "requires", "static_assert", "defined",
  };
  return k;
}

/// Calls that allocate (or may allocate) and are therefore banned in
/// SA_STEADY_STATE regions when they do not resolve to a same-repo
/// function.
const std::set<std::string>& banned_alloc_calls() {
  static const std::set<std::string> k = {
      "malloc",       "calloc",   "realloc", "aligned_alloc",
      "posix_memalign", "strdup", "make_unique", "make_shared",
      "push_back",    "emplace_back", "emplace", "emplace_front",
      "resize",       "reserve",  "insert",  "assign",
      "append",       "to_string", "substr", "str",
  };
  return k;
}

/// Allocating / order-hostile types banned as direct uses in steady
/// regions (std::function and the unordered containers type-erase or
/// hash-scatter their storage — both heap-backed).
const std::set<std::string>& banned_alloc_types() {
  static const std::set<std::string> k = {
      "function",      "unordered_map",      "unordered_set",
      "unordered_multimap", "unordered_multiset", "ostringstream",
      "stringstream",
  };
  return k;
}

const std::set<std::string>& collective_calls() {
  static const std::set<std::string> k = {
      "allreduce_sum",   "allreduce_sum_scalar", "allreduce_start",
      "allreduce_wait",  "broadcast_bytes",
  };
  return k;
}

const std::set<std::string>& nondeterministic_calls() {
  static const std::set<std::string> k = {
      "rand", "srand", "drand48", "lrand48", "time", "gettimeofday",
  };
  return k;
}

const std::set<std::string>& nondeterministic_types() {
  static const std::set<std::string> k = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24_base", "ranlux48_base", "knuth_b",
  };
  return k;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> k = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  return k;
}

/// Layer partial order: each layer may include itself plus this set.
const std::map<std::string, std::set<std::string>>& layer_allowed() {
  static const std::map<std::string, std::set<std::string>> m = {
      {"common", {}},
      {"la", {"common"}},
      {"io", {"common"}},
      {"dist", {"common", "la"}},
      {"data", {"common", "la"}},
      {"perf", {"common", "la", "dist"}},
      {"core", {"common", "la", "io", "dist", "data", "perf"}},
  };
  return m;
}

bool is_engine_or_kernel_layer(const std::string& layer) {
  return layer == "core" || layer == "la" || layer == "dist";
}

bool collective_allowed_tu(const std::string& rel) {
  // The round plane: the EngineBase TU owns the round collective and the
  // snapshot scatter; the dist layer IS the communication subsystem.
  return rel.rfind("src/dist/", 0) == 0 || rel == "src/core/solver.cpp";
}

// ---------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------

struct CallSite {
  std::string name;
  int line;
};

struct DirectUse {
  std::string what;
  int line;
};

struct FunctionDef {
  std::string name;
  std::string display;  // Class::name when the qualifier is visible
  std::string file;     // rel path
  int line = 0;
  bool annotated = false;
  std::vector<CallSite> calls;
  std::vector<DirectUse> alloc_uses;  // new-exprs + banned type uses
};

struct FileAnalysis {
  LexedFile lex;
  std::string layer;  // "" when the file is not under src/<layer>/
  std::vector<FunctionDef> functions;
  std::vector<DirectUse> determinism_uses;  // type/iteration findings
};

using Tokens = std::vector<Token>;

bool is_ident(const Token& t) { return t.kind == Token::Kind::kIdent; }
bool is_punct(const Token& t, const char* p) {
  return t.kind == Token::Kind::kPunct && t.text == p;
}

/// Index of the matching closer for the opener at `open` (which must be
/// '(' / '{' / '['), or tokens.size() when unbalanced.
std::size_t match_group(const Tokens& t, std::size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], o.c_str())) ++depth;
    else if (is_punct(t[i], c.c_str()) && --depth == 0) return i;
  }
  return t.size();
}

/// Collects the names of variables declared with an unordered container
/// type anywhere in the file (token pattern: unordered_* < ... > name).
std::set<std::string> unordered_variables(const Tokens& t) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i]) || unordered_types().count(t[i].text) == 0) continue;
    if (!is_punct(t[i + 1], "<")) continue;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (is_punct(t[j], "<")) ++depth;
      else if (is_punct(t[j], ">") && --depth == 0) break;
    }
    if (j + 1 < t.size() && is_ident(t[j + 1]) &&
        (j + 2 >= t.size() || !is_punct(t[j + 2], "(")))
      vars.insert(t[j + 1].text);
  }
  return vars;
}

/// Scans a function body (tokens in [begin, end)) for calls, direct
/// banned uses, the SA_STEADY_STATE marker, and determinism findings.
void scan_body(const Tokens& t, std::size_t begin, std::size_t end,
               const std::set<std::string>& unordered_vars,
               FunctionDef& fn, std::vector<DirectUse>& det) {
  bool in_throw = false;  // tokens of a throw-statement: the steady-state
                          // contract is already void once we are
                          // unwinding, so error-path construction is
                          // exempt from the alloc rule
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = t[i];
    if (is_punct(tok, ";")) in_throw = false;
    if (!is_ident(tok)) continue;
    if (tok.text == "SA_STEADY_STATE") {
      fn.annotated = true;
      continue;
    }
    if (tok.text == "throw") {
      in_throw = true;
      continue;
    }
    if (tok.text == "new") {
      const bool op_decl = i > begin && is_ident(t[i - 1]) &&
                           t[i - 1].text == "operator";
      if (!in_throw && !op_decl)
        fn.alloc_uses.push_back({"'new' expression", tok.line});
      continue;
    }
    // Range-for over an unordered container: `for ( ... : var ... )`.
    if (tok.text == "for" && i + 1 < end && is_punct(t[i + 1], "(")) {
      const std::size_t close = match_group(t, i + 1);
      std::size_t colon = close;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(t[j], "(")) ++depth;
        else if (is_punct(t[j], ")")) --depth;
        else if (depth == 1 && is_punct(t[j], ":")) {
          colon = j;
          break;
        }
      }
      for (std::size_t j = colon + 1; j < close && j < end; ++j)
        if (is_ident(t[j]) && unordered_vars.count(t[j].text) > 0)
          det.push_back({"iteration over unordered container '" +
                             t[j].text + "' (unspecified order)",
                         t[j].line});
      continue;
    }
    if (banned_alloc_types().count(tok.text) > 0 && !in_throw) {
      // Type use, not a call: std::function< / unordered_map< / a
      // stream object declaration.
      const bool typeish =
          i + 1 < end && (is_punct(t[i + 1], "<") || is_ident(t[i + 1]));
      if (typeish)
        fn.alloc_uses.push_back({"allocating type 'std::" + tok.text + "'",
                                 tok.line});
    }
    if (nondeterministic_types().count(tok.text) > 0)
      det.push_back({"non-SplitMix64 RNG / entropy source 'std::" +
                         tok.text + "'",
                     tok.line});
    // Calls: identifier followed by '('.
    if (i + 1 < end && is_punct(t[i + 1], "(") &&
        keywords().count(tok.text) == 0) {
      if (!in_throw) fn.calls.push_back({tok.text, tok.line});
      if (nondeterministic_calls().count(tok.text) > 0)
        det.push_back({"non-deterministic call '" + tok.text + "()'",
                       tok.line});
    }
    // Explicit iterator walk: var.begin() on an unordered container.
    if (unordered_vars.count(tok.text) > 0 && i + 3 < end &&
        (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
        is_ident(t[i + 2]) &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") &&
        is_punct(t[i + 3], "("))
      det.push_back({"iteration over unordered container '" + tok.text +
                         "' (unspecified order)",
                     tok.line});
  }
}

/// Walks a file's token stream extracting function definitions.  A
/// definition is `name (params) qualifiers... {` — with constructor
/// member-init lists (`: member_(x), other_{y}`) threaded through.  The
/// grammar is heuristic but errs short: a missed definition weakens one
/// chain, it never invents a false edge.
void extract_functions(FileAnalysis& fa) {
  const Tokens& t = fa.lex.tokens;
  const std::set<std::string> uvars = unordered_variables(t);
  std::size_t i = 0;
  while (i < t.size()) {
    if (!is_ident(t[i]) || keywords().count(t[i].text) > 0 ||
        i + 1 >= t.size() || !is_punct(t[i + 1], "(")) {
      ++i;
      continue;
    }
    const std::size_t close = match_group(t, i + 1);
    if (close >= t.size()) {
      ++i;
      continue;
    }
    std::size_t k = close + 1;
    std::size_t body = t.size();
    // Skip trailing qualifiers: const noexcept(...) override final & &&
    // -> <trailing return type>.
    while (k < t.size()) {
      const Token& q = t[k];
      if (is_ident(q) && (q.text == "const" || q.text == "override" ||
                          q.text == "final" || q.text == "mutable" ||
                          q.text == "noexcept" || q.text == "try")) {
        ++k;
        if (k < t.size() && is_punct(t[k], "(")) k = match_group(t, k) + 1;
        continue;
      }
      if (is_punct(q, "&")) {
        ++k;
        continue;
      }
      if (is_punct(q, "->")) {  // trailing return type
        ++k;
        while (k < t.size() && !is_punct(t[k], "{") &&
               !is_punct(t[k], ";") && !is_punct(t[k], "="))
          ++k;
        continue;
      }
      break;
    }
    if (k < t.size() && is_punct(t[k], "{")) {
      body = k;
    } else if (k < t.size() && is_punct(t[k], ":") ) {
      // Constructor member-init list: name (args|{args}) [, ...] then {.
      std::size_t j = k + 1;
      while (j < t.size()) {
        while (j < t.size() &&
               (is_ident(t[j]) || is_punct(t[j], "::") ||
                is_punct(t[j], "<") || is_punct(t[j], ">") ||
                is_punct(t[j], ",") || t[j].kind == Token::Kind::kNumber))
          ++j;
        if (j >= t.size()) break;
        if (is_punct(t[j], "(") ) {
          j = match_group(t, j) + 1;
          if (j < t.size() && is_punct(t[j], ",")) {
            ++j;
            continue;
          }
          if (j < t.size() && is_punct(t[j], "{")) body = j;
          break;
        }
        if (is_punct(t[j], "{")) {
          const std::size_t g = match_group(t, j);
          if (g + 1 < t.size() && is_punct(t[g + 1], ",")) {
            j = g + 2;
            continue;
          }
          if (g + 1 < t.size() && is_punct(t[g + 1], "{")) body = g + 1;
          break;
        }
        break;
      }
    }
    if (body >= t.size()) {
      ++i;
      continue;
    }
    const std::size_t body_end = match_group(t, body);
    FunctionDef fn;
    fn.name = t[i].text;
    fn.display = fn.name;
    if (i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2]))
      fn.display = t[i - 2].text + "::" + fn.name;
    fn.file = fa.lex.rel;
    fn.line = t[i].line;
    scan_body(t, body + 1, body_end, uvars, fn, fa.determinism_uses);
    fa.functions.push_back(std::move(fn));
    i = body_end + 1;
  }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

struct Context {
  std::vector<FileAnalysis> files;
  std::set<std::string> diag_keys;  // dedup
  std::vector<Diagnostic> diags;

  void add(const std::string& file, int line, const std::string& rule,
           const std::string& message) {
    const std::string key =
        file + ":" + std::to_string(line) + ":" + rule + ":" + message;
    if (!diag_keys.insert(key).second) return;
    diags.push_back({file, line, rule, message});
  }
};

void check_suppression_justifications(Context& ctx) {
  for (const FileAnalysis& fa : ctx.files)
    for (const auto& [line, s] : fa.lex.suppressions)
      if (!s.justified)
        ctx.add(fa.lex.rel, line, "suppression",
                "sa-lint waiver without a justification — write "
                "'sa-lint: allow(rule): why this is sound'");
}

void check_layering(Context& ctx) {
  std::map<std::string, const FileAnalysis*> by_rel;
  for (const FileAnalysis& fa : ctx.files) by_rel[fa.lex.rel] = &fa;

  for (const FileAnalysis& fa : ctx.files) {
    if (fa.layer.empty()) continue;
    const auto allowed = layer_allowed().find(fa.layer);
    if (allowed == layer_allowed().end()) continue;
    for (const Include& inc : fa.lex.includes) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string dep = inc.target.substr(0, slash);
      if (layer_allowed().count(dep) == 0) continue;  // not a layer path
      if (dep == fa.layer || allowed->second.count(dep) > 0) continue;
      if (fa.lex.suppressed("layering", inc.line)) continue;
      ctx.add(fa.lex.rel, inc.line, "layering",
              "layer '" + fa.layer + "' must not include '" + inc.target +
                  "' (allowed: common" +
                  [&] {
                    std::string s;
                    for (const std::string& a : allowed->second)
                      if (a != "common") s += ", " + a;
                    return s;
                  }() +
                  ")");
    }
  }

  // Include cycles among repo headers (DFS, three colors).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& rel) {
        color[rel] = 1;
        stack.push_back(rel);
        const auto it = by_rel.find(rel);
        if (it != by_rel.end()) {
          for (const Include& inc : it->second->lex.includes) {
            const std::string dep = "src/" + inc.target;
            if (by_rel.count(dep) == 0) continue;
            if (it->second->lex.suppressed("layering", inc.line)) continue;
            if (color[dep] == 1) {
              std::string cycle;
              bool in_cycle = false;
              for (const std::string& s : stack) {
                if (s == dep) in_cycle = true;
                if (in_cycle) cycle += s + " -> ";
              }
              cycle += dep;
              ctx.add(rel, inc.line, "layering",
                      "include cycle: " + cycle);
            } else if (color[dep] == 0) {
              dfs(dep);
            }
          }
        }
        color[rel] = 2;
        stack.pop_back();
      };
  for (const FileAnalysis& fa : ctx.files)
    if (color[fa.lex.rel] == 0) dfs(fa.lex.rel);
}

void check_collectives(Context& ctx) {
  for (const FileAnalysis& fa : ctx.files) {
    if (collective_allowed_tu(fa.lex.rel)) continue;
    for (const FunctionDef& fn : fa.functions)
      for (const CallSite& c : fn.calls) {
        if (collective_calls().count(c.name) == 0) continue;
        if (fa.lex.suppressed("collective", c.line)) continue;
        ctx.add(fa.lex.rel, c.line, "collective",
                "call to '" + c.name + "' outside the round plane — only "
                "src/core/solver.cpp (EngineBase) and src/dist/ may issue "
                "collectives, so one-collective-per-round cannot regress");
      }
  }
}

void check_determinism(Context& ctx) {
  for (const FileAnalysis& fa : ctx.files) {
    if (!is_engine_or_kernel_layer(fa.layer)) continue;
    for (const DirectUse& u : fa.determinism_uses) {
      if (fa.lex.suppressed("determinism", u.line)) continue;
      ctx.add(fa.lex.rel, u.line, "determinism",
              u.what + " in an engine/kernel TU — results must be bitwise "
              "reproducible (use data::SplitMix64 and ordered iteration)");
    }
  }
}

void check_allocation(Context& ctx) {
  // Name-resolved call graph: a call edge follows EVERY same-repo
  // function with that name (virtual dispatch and overloads resolve
  // conservatively — the union of possible callees).
  std::map<std::string, std::vector<const FunctionDef*>> by_name;
  std::map<const FunctionDef*, const FileAnalysis*> owner;
  for (const FileAnalysis& fa : ctx.files)
    for (const FunctionDef& fn : fa.functions) {
      by_name[fn.name].push_back(&fn);
      owner[&fn] = &fa;
    }

  for (const FileAnalysis& fa : ctx.files) {
    for (const FunctionDef& root : fa.functions) {
      if (!root.annotated) continue;
      std::set<const FunctionDef*> visited;
      std::deque<std::pair<const FunctionDef*, std::string>> queue;
      queue.push_back({&root, root.display});
      visited.insert(&root);
      while (!queue.empty()) {
        const auto [fn, chain] = queue.front();
        queue.pop_front();
        const FileAnalysis& ffa = *owner[fn];
        for (const DirectUse& u : fn->alloc_uses) {
          if (ffa.lex.suppressed("alloc", u.line)) continue;
          ctx.add(ffa.lex.rel, u.line, "alloc",
                  u.what + " reachable from SA_STEADY_STATE region '" +
                      root.display + "' (chain: " + chain + ")");
        }
        for (const CallSite& c : fn->calls) {
          if (ffa.lex.suppressed("alloc", c.line)) continue;
          const auto targets = by_name.find(c.name);
          if (targets != by_name.end()) {
            for (const FunctionDef* callee : targets->second) {
              if (callee == fn || visited.count(callee) > 0) continue;
              const FileAnalysis& cfa = *owner[callee];
              if (cfa.lex.suppressed("alloc", callee->line)) continue;
              visited.insert(callee);
              queue.push_back({callee, chain + " -> " + callee->display});
            }
          } else if (banned_alloc_calls().count(c.name) > 0) {
            ctx.add(ffa.lex.rel, c.line, "alloc",
                    "allocating call '" + c.name +
                        "()' reachable from SA_STEADY_STATE region '" +
                        root.display + "' (chain: " + chain + ")");
          }
        }
      }
    }
  }
}

std::string layer_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

}  // namespace

std::string format(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": error: [" + d.rule +
         "] " + d.message;
}

LintResult run_lint(const std::string& root) {
  const fs::path src_root = fs::path(root) / "src";
  if (!fs::is_directory(src_root))
    throw std::runtime_error("sa_lint: no src/ directory under " + root);

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  Context ctx;
  for (const fs::path& p : paths) {
    const std::string rel =
        fs::relative(p, fs::path(root)).generic_string();
    FileAnalysis fa;
    fa.lex = lex_file(p.string(), rel);
    fa.layer = layer_of(rel);
    extract_functions(fa);
    ctx.files.push_back(std::move(fa));
  }

  check_suppression_justifications(ctx);
  check_layering(ctx);
  check_collectives(ctx);
  check_determinism(ctx);
  check_allocation(ctx);

  std::sort(ctx.diags.begin(), ctx.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  LintResult result;
  result.diagnostics = std::move(ctx.diags);
  result.files_scanned = paths.size();
  return result;
}

}  // namespace sa_lint
